package frames

// This file grounds the paper's slotted timing abstraction (Table 2:
// "Signal Time 1 slot, Data Transmission Time 5 slots") in the actual
// IEEE 802.11 frame formats: control frames are 14–20 octets, the RAK
// frame shares the ACK format (paper, Figure 1), and a data frame is a
// 28-octet MAC header (+4 FCS, counted below) plus payload. Dividing
// real airtimes by the control-frame airtime recovers the paper's
// "5 slots per data frame" for payloads around 160 octets at 2 Mbps —
// the size range of routing and emergency-report messages.

// Frame sizes in octets, per IEEE 802.11-1997 (MAC header + FCS).
const (
	// RTSBytes is the RTS frame size: frame control, duration, RA, TA,
	// FCS.
	RTSBytes = 20
	// CTSBytes is the CTS frame size: frame control, duration, RA, FCS.
	CTSBytes = 14
	// ACKBytes is the ACK frame size (same layout as CTS).
	ACKBytes = 14
	// RAKBytes is the paper's RAK frame: "the same format as the ACK
	// frame ... frame control, Duration, receiver address (RA) and frame
	// check sequence (FCS)" (Figure 1).
	RAKBytes = 14
	// NAKBytes is BSMA's NAK, also ACK-shaped.
	NAKBytes = 14
	// DataHeaderBytes is the data MAC header (3 addresses + QoS-less
	// 802.11-1997 layout) plus FCS.
	DataHeaderBytes = 28 + 4
	// PLCPBits is the PHY preamble+header overhead prepended to every
	// frame, in microseconds-equivalent bits at 1 Mbps for FHSS (96 µs
	// preamble/header is typical; we use the 1997 FHSS 96-bit figure
	// transmitted at the basic rate).
	PLCPBits = 96
)

// ControlBytes returns the size in octets of the given control frame
// type (data frames depend on the payload; see DataAirtimeMicros).
func ControlBytes(t Type) int {
	switch t {
	case RTS:
		return RTSBytes
	case CTS:
		return CTSBytes
	case ACK:
		return ACKBytes
	case RAK:
		return RAKBytes
	case NAK:
		return NAKBytes
	default:
		return CTSBytes
	}
}

// AirtimeMicros returns the airtime in microseconds of a frame of the
// given size at the given PHY rate in Mbps, including the PLCP overhead
// transmitted at the basic rate (1 Mbps).
func AirtimeMicros(bytes int, mbps float64) float64 {
	if mbps <= 0 {
		mbps = 1
	}
	return float64(PLCPBits) + float64(8*bytes)/mbps
}

// DataAirtimeMicros returns the airtime of a data frame carrying the
// given payload.
func DataAirtimeMicros(payloadBytes int, mbps float64) float64 {
	return AirtimeMicros(DataHeaderBytes+payloadBytes, mbps)
}

// SlotsPerData returns the paper's "data transmission time in signal
// slots": the data airtime divided by the control (RTS) airtime, at the
// given payload and rate. The paper's Table 2 value of 5 corresponds to
// payloads around 160 octets at 2 Mbps (or ~116 at 1 Mbps).
func SlotsPerData(payloadBytes int, mbps float64) float64 {
	return DataAirtimeMicros(payloadBytes, mbps) / AirtimeMicros(RTSBytes, mbps)
}

// TimingForPayload builds a slotted Timing whose Data length reflects the
// real airtime ratio for the given payload and rate (rounded to the
// nearest slot, minimum 1).
func TimingForPayload(payloadBytes int, mbps float64) Timing {
	ratio := SlotsPerData(payloadBytes, mbps)
	data := int(ratio + 0.5)
	if data < 1 {
		data = 1
	}
	return Timing{Control: 1, Data: data}
}
