package frames_test

import (
	"fmt"

	"relmac/internal/frames"
)

// The Duration field of the i-th RTS in a BMMM batch covers everything
// that follows it (Figure 3's formula); it shrinks as the batch
// progresses, so late joiners yield exactly until the batch ends.
func ExampleTiming_BatchDuration() {
	tm := frames.DefaultTiming()
	for i := 1; i <= 3; i++ {
		fmt.Printf("RTS %d of 3: Duration %d slots\n", i, tm.BatchDuration(3, i))
	}
	// Output:
	// RTS 1 of 3: Duration 16 slots
	// RTS 2 of 3: Duration 14 slots
	// RTS 3 of 3: Duration 12 slots
}

// The paper's §3 argument, quantified: the random-CTS-defer window for
// FHSS is a single slot, so five receivers are guaranteed to collide.
func ExampleIFS_MaxCTSDeferWindow() {
	fh := frames.Spacing(frames.FHSS)
	w := fh.MaxCTSDeferWindow(false)
	fmt.Printf("w = %d, P(collision | 5 receivers) = %.0f%%\n",
		w, 100*frames.CollisionProbability(5, w))
	// Output:
	// w = 1, P(collision | 5 receivers) = 100%
}

// The slotted abstraction of Table 2 corresponds to real 802.11 airtimes
// for ~160-byte payloads at 2 Mbps.
func ExampleSlotsPerData() {
	fmt.Printf("%.1f control-slots per data frame\n", frames.SlotsPerData(164, 2))
	// Output:
	// 5.0 control-slots per data frame
}
