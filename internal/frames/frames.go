// Package frames defines the MAC frame vocabulary shared by all protocols
// in this repository: the IEEE 802.11 control and data frames (RTS, CTS,
// ACK, DATA), the NAK frame added by BSMA [20], and the RAK (Request for
// ACK) control frame introduced by the paper for BMMM/LAMM. RAK has the
// same format as ACK — frame control, Duration, receiver address and FCS
// (paper, Figure 1) — which is what lets BMMM co-exist with standard
// 802.11 equipment.
//
// Frames carry a Duration field expressed in slots; stations overhearing a
// frame not addressed to them yield (set their NAV) for that long, which
// is the virtual carrier sense that defeats the hidden-terminal problem.
package frames

import "fmt"

// Type enumerates MAC frame types.
type Type uint8

// Frame types. Beacon is included for completeness of the 802.11 model
// (neighbor/location discovery) although the simulator treats neighbor
// tables as already learned, as the paper does.
const (
	RTS Type = iota
	CTS
	Data
	ACK
	RAK // Request for ACK — the paper's new control frame (Figure 1)
	NAK // negative ACK used by BSMA [20]
	Beacon
	numTypes
)

// NumTypes is the number of distinct frame types. Size per-type arrays
// with it ([frames.NumTypes]int64) so a newly added frame type can never
// silently fall outside a hand-sized counter array.
const NumTypes = int(numTypes)

// Types returns every frame type in declaration order, for iterating
// per-type counters.
func Types() [NumTypes]Type {
	var ts [NumTypes]Type
	for i := range ts {
		ts[i] = Type(i)
	}
	return ts
}

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case RTS:
		return "RTS"
	case CTS:
		return "CTS"
	case Data:
		return "DATA"
	case ACK:
		return "ACK"
	case RAK:
		return "RAK"
	case NAK:
		return "NAK"
	case Beacon:
		return "BEACON"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// IsControl reports whether the frame type is a control frame (everything
// except DATA and BEACON).
func (t Type) IsControl() bool {
	switch t {
	case RTS, CTS, ACK, RAK, NAK:
		return true
	default:
		return false
	}
}

// Addr identifies a station. The simulator uses small integer station IDs
// in place of 48-bit MAC addresses.
type Addr int

// BroadcastAddr is the group receiver address used by multicast RTS and
// DATA frames (the all-ones MAC address in real 802.11).
const BroadcastAddr Addr = -1

// NoAddr marks an unset address field.
const NoAddr Addr = -2

// String implements fmt.Stringer.
func (a Addr) String() string {
	switch a {
	case BroadcastAddr:
		return "*"
	case NoAddr:
		return "-"
	default:
		return fmt.Sprintf("%d", int(a))
	}
}

// Frame is a MAC frame in flight. All durations are in slots.
type Frame struct {
	Type Type
	// Src is the transmitter address (TA).
	Src Addr
	// Dst is the receiver address (RA); BroadcastAddr for group frames.
	Dst Addr
	// Duration is the NAV value: how many slots the medium will remain
	// occupied after this frame ends. Overhearing stations yield that
	// long (receiver's protocol, Figure 3).
	Duration int
	// Seq is the data sequence number (used by BMW's receive buffers).
	Seq int
	// MsgID ties control frames to the multicast message being served;
	// purely a simulation-level identity, not on the air in real 802.11.
	MsgID int64
	// Group lists the intended receivers of a multicast DATA frame, so
	// the simulator can account delivery. Real frames carry a group
	// address; membership is known from the routing table (paper §2).
	Group []Addr
	// Missing holds the data sequence numbers a BMW CTS asks the sender
	// to (re)transmit; empty with Suppress set means "already have it".
	Missing []int
	// Suppress marks a BMW CTS that tells the sender to skip the data
	// transmission because the receiver already holds every frame.
	Suppress bool
}

// String renders a concise human-readable form for traces, e.g.
// "RTS 3→7 dur=12".
func (f *Frame) String() string {
	return fmt.Sprintf("%s %s→%s dur=%d", f.Type, f.Src, f.Dst, f.Duration)
}

// Timing holds the frame airtime parameters of the slotted simulator.
// The paper's Table 2 uses "Signal Time 1 slot" for every control frame
// and "Data Transmission Time 5 slots".
type Timing struct {
	// Control is the airtime of RTS/CTS/ACK/RAK/NAK/Beacon frames.
	Control int
	// Data is the airtime of a DATA frame.
	Data int
}

// DefaultTiming matches the paper's simulation parameters (Table 2).
func DefaultTiming() Timing { return Timing{Control: 1, Data: 5} }

// Airtime returns the number of slots a frame of type t occupies.
func (tm Timing) Airtime(t Type) int {
	if t == Data {
		return tm.Data
	}
	return tm.Control
}

// Validate reports an error for non-positive airtimes.
func (tm Timing) Validate() error {
	if tm.Control <= 0 || tm.Data <= 0 {
		return fmt.Errorf("frames: airtimes must be positive (control=%d data=%d)", tm.Control, tm.Data)
	}
	return nil
}

// BatchDuration computes the Duration field of the i-th RTS (1-based) in
// the BMMM Batch Mode Procedure for a batch of size n (paper, Figure 3):
//
//	(n-i)·T_RTS + (n-i+1)·T_CTS + T_DATA + n·(T_RAK + T_ACK)
//
// i.e. the remaining occupancy of the whole batch after this RTS ends.
func (tm Timing) BatchDuration(n, i int) int {
	return (n-i)*tm.Control + (n-i+1)*tm.Control + tm.Data + n*(tm.Control+tm.Control)
}

// RAKDuration computes the Duration field of the i-th RAK (1-based) in a
// batch of size n: the remaining RAK/ACK exchanges plus the pending ACK.
func (tm Timing) RAKDuration(n, i int) int {
	return (n-i)*(tm.Control+tm.Control) + tm.Control
}
