package frames

import (
	"strings"
	"testing"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		RTS: "RTS", CTS: "CTS", Data: "DATA", ACK: "ACK",
		RAK: "RAK", NAK: "NAK", Beacon: "BEACON",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if got := Type(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestIsControl(t *testing.T) {
	for _, ty := range []Type{RTS, CTS, ACK, RAK, NAK} {
		if !ty.IsControl() {
			t.Errorf("%v should be a control frame", ty)
		}
	}
	for _, ty := range []Type{Data, Beacon} {
		if ty.IsControl() {
			t.Errorf("%v should not be a control frame", ty)
		}
	}
}

func TestAddrString(t *testing.T) {
	if BroadcastAddr.String() != "*" || NoAddr.String() != "-" || Addr(7).String() != "7" {
		t.Error("Addr rendering wrong")
	}
}

func TestFrameString(t *testing.T) {
	f := &Frame{Type: RTS, Src: 3, Dst: 7, Duration: 12}
	if got := f.String(); got != "RTS 3→7 dur=12" {
		t.Errorf("Frame.String() = %q", got)
	}
}

func TestDefaultTiming(t *testing.T) {
	tm := DefaultTiming()
	if tm.Control != 1 || tm.Data != 5 {
		t.Errorf("default timing = %+v, want paper's Table 2 values", tm)
	}
	if err := tm.Validate(); err != nil {
		t.Errorf("default timing invalid: %v", err)
	}
	if (Timing{Control: 0, Data: 5}).Validate() == nil {
		t.Error("zero control airtime must fail validation")
	}
}

func TestAirtime(t *testing.T) {
	tm := Timing{Control: 2, Data: 9}
	if tm.Airtime(Data) != 9 {
		t.Error("data airtime wrong")
	}
	for _, ty := range []Type{RTS, CTS, ACK, RAK, NAK, Beacon} {
		if tm.Airtime(ty) != 2 {
			t.Errorf("%v airtime = %d, want 2", ty, tm.Airtime(ty))
		}
	}
}

// The Duration fields must chain correctly: the Duration of RTS_i equals
// the total airtime of everything that follows it in a clean batch.
func TestBatchDurationChains(t *testing.T) {
	tm := DefaultTiming()
	for n := 1; n <= 8; n++ {
		for i := 1; i <= n; i++ {
			want := (n-i)*tm.Control + // remaining RTS frames
				(n-i+1)*tm.Control + // this CTS and remaining CTS frames
				tm.Data +
				n*(tm.Control+tm.Control) // all RAK/ACK pairs
			if got := tm.BatchDuration(n, i); got != want {
				t.Errorf("BatchDuration(%d,%d) = %d, want %d", n, i, got, want)
			}
		}
		// Paper formula at i=n: one CTS + data + n RAK/ACK pairs.
		if got := tm.BatchDuration(n, n); got != tm.Control+tm.Data+2*n*tm.Control {
			t.Errorf("BatchDuration(%d,%d) = %d inconsistent", n, n, got)
		}
	}
}

func TestBatchDurationDecreases(t *testing.T) {
	tm := DefaultTiming()
	const n = 6
	prev := tm.BatchDuration(n, 1)
	for i := 2; i <= n; i++ {
		cur := tm.BatchDuration(n, i)
		if cur >= prev {
			t.Fatalf("duration must shrink along the batch: i=%d %d >= %d", i, cur, prev)
		}
		prev = cur
	}
}

func TestRAKDuration(t *testing.T) {
	tm := DefaultTiming()
	const n = 4
	// Last RAK: only its own ACK remains.
	if got := tm.RAKDuration(n, n); got != tm.Control {
		t.Errorf("RAKDuration(n,n) = %d, want %d", got, tm.Control)
	}
	// First RAK: n-1 further RAK/ACK pairs plus own ACK.
	want := (n-1)*2*tm.Control + tm.Control
	if got := tm.RAKDuration(n, 1); got != want {
		t.Errorf("RAKDuration(n,1) = %d, want %d", got, want)
	}
}

func TestSpacingConstants(t *testing.T) {
	fh := Spacing(FHSS)
	if fh.SIFS != 28 || fh.DIFS != 128 || fh.Slot != 50 || fh.PIFS != 78 {
		t.Errorf("FHSS spacing = %+v, want the paper's §3 values", fh)
	}
	if err := fh.Validate(); err != nil {
		t.Errorf("FHSS identities: %v", err)
	}
	ds := Spacing(DSSS)
	if err := ds.Validate(); err != nil {
		t.Errorf("DSSS identities: %v", err)
	}
	if FHSS.String() != "FHSS" || DSSS.String() != "DSSS" {
		t.Error("PHY names wrong")
	}
	if PHY(9).String() != "PHY(9)" {
		t.Error("unknown PHY name wrong")
	}
	if Spacing(PHY(9)) != Spacing(FHSS) {
		t.Error("unknown PHY must default to FHSS")
	}
}

// The paper's §3 conclusion: for FHSS the defer window is at most 1, and
// 0 once PIFS is honoured.
func TestMaxCTSDeferWindowMatchesPaper(t *testing.T) {
	fh := Spacing(FHSS)
	if got := fh.MaxCTSDeferWindow(false); got != 1 {
		t.Errorf("FHSS defer window = %d, want 1 (paper §3)", got)
	}
	if got := fh.MaxCTSDeferWindow(true); got != 0 {
		t.Errorf("FHSS defer window with PIFS = %d, want 0 (paper footnote 1)", got)
	}
	ds := Spacing(DSSS)
	if got := ds.MaxCTSDeferWindow(false); got != 1 {
		t.Errorf("DSSS defer window = %d, want 1", got)
	}
}

func TestCollisionProbability(t *testing.T) {
	if CollisionProbability(1, 5) != 0 || CollisionProbability(0, 5) != 0 {
		t.Error("fewer than two receivers cannot collide")
	}
	if CollisionProbability(2, -1) != 0 {
		t.Error("negative window must return 0")
	}
	// More receivers than slots: pigeonhole.
	if CollisionProbability(3, 1) != 1 {
		t.Error("3 receivers in 2 slots must collide")
	}
	// Two receivers, window w: collision probability 1/(w+1).
	for _, w := range []int{0, 1, 4, 9} {
		want := 1.0 / float64(w+1)
		if got := CollisionProbability(2, w); got < want-1e-12 || got > want+1e-12 {
			t.Errorf("P(collision | n=2, w=%d) = %v, want %v", w, got, want)
		}
	}
	// With the paper's w=1 window, even 2 receivers collide half the
	// time; 5 receivers are certain to collide.
	if CollisionProbability(5, 1) != 1 {
		t.Error("five receivers in the FHSS window must collide")
	}
	// Probability grows with n at fixed w.
	prev := 0.0
	for n := 2; n < 10; n++ {
		p := CollisionProbability(n, 9)
		if p <= prev {
			t.Fatalf("collision probability must grow with n (n=%d)", n)
		}
		prev = p
	}
}

func TestControlBytes(t *testing.T) {
	if ControlBytes(RTS) != 20 {
		t.Error("RTS is 20 octets")
	}
	for _, ty := range []Type{CTS, ACK, RAK, NAK} {
		if ControlBytes(ty) != 14 {
			t.Errorf("%v should be 14 octets (ACK format, paper Figure 1)", ty)
		}
	}
	if ControlBytes(Data) != CTSBytes {
		t.Error("non-control fallback wrong")
	}
}

func TestAirtimeMicros(t *testing.T) {
	// 20 bytes at 1 Mbps: 96 + 160 = 256 µs.
	if got := AirtimeMicros(20, 1); got != 256 {
		t.Errorf("airtime = %v, want 256", got)
	}
	// Rate halves the payload time but not the PLCP.
	if got := AirtimeMicros(20, 2); got != 96+80 {
		t.Errorf("airtime@2Mbps = %v", got)
	}
	// Degenerate rate clamps to 1 Mbps.
	if AirtimeMicros(20, 0) != AirtimeMicros(20, 1) {
		t.Error("zero rate must clamp")
	}
}

// The paper's Table 2 ratio: a data frame takes ~5 control-frame slots.
// Verify a realistic payload/rate combination lands there.
func TestSlotsPerDataMatchesTable2(t *testing.T) {
	got := SlotsPerData(164, 2)
	if got < 4.5 || got > 5.5 {
		t.Errorf("164-byte payload at 2 Mbps = %.2f slots, want ≈5", got)
	}
	// Ratio grows with payload and shrinks with rate (toward the PLCP
	// floor).
	if SlotsPerData(1000, 2) <= SlotsPerData(100, 2) {
		t.Error("ratio must grow with payload")
	}
	if SlotsPerData(164, 11) >= SlotsPerData(164, 1) {
		t.Error("ratio must shrink as the rate rises")
	}
}

func TestTimingForPayload(t *testing.T) {
	tm := TimingForPayload(164, 2)
	if tm.Control != 1 || tm.Data != 5 {
		t.Errorf("TimingForPayload(164, 2) = %+v, want {1 5}", tm)
	}
	if err := tm.Validate(); err != nil {
		t.Error(err)
	}
	tiny := TimingForPayload(0, 11)
	if tiny.Data < 1 {
		t.Error("data airtime must be at least one slot")
	}
}
