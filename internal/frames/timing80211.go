package frames

import "fmt"

// This file carries the real-time IEEE 802.11 timing constants the paper
// uses in §3 to prove that the "random CTS defer" fix for the Tang–Gerla
// protocol cannot work: every receiver's CTS must leave before any
// contending station's DIFS expires, so the defer window w is bounded by
// (DIFS - SIFS)/slot — which is 2 slots for FHSS (leaving w ≤ 1 after
// the mandatory SIFS) and 0 once the PIFS is honoured.

// PHY identifies an 802.11 physical layer variant.
type PHY uint8

// PHY variants from the 1997 standard discussed in the paper.
const (
	// FHSS is the frequency-hopping PHY: SIFS 28 µs, slot 50 µs,
	// DIFS 128 µs, PIFS 78 µs (paper §3).
	FHSS PHY = iota
	// DSSS is the direct-sequence PHY: SIFS 10 µs, slot 20 µs,
	// DIFS 50 µs, PIFS 30 µs.
	DSSS
)

// String implements fmt.Stringer.
func (p PHY) String() string {
	switch p {
	case FHSS:
		return "FHSS"
	case DSSS:
		return "DSSS"
	default:
		return fmt.Sprintf("PHY(%d)", uint8(p))
	}
}

// IFS holds the inter-frame spacing parameters of a PHY in microseconds.
type IFS struct {
	SIFS, PIFS, DIFS, Slot int
}

// Spacing returns the inter-frame spacings of the PHY.
func Spacing(p PHY) IFS {
	switch p {
	case DSSS:
		return IFS{SIFS: 10, PIFS: 30, DIFS: 50, Slot: 20}
	default: // FHSS — the variant the paper's §3 numbers use
		return IFS{SIFS: 28, PIFS: 78, DIFS: 128, Slot: 50}
	}
}

// Validate checks the standard's structural identities: PIFS = SIFS +
// slot and DIFS = SIFS + 2·slot.
func (s IFS) Validate() error {
	if s.PIFS != s.SIFS+s.Slot {
		return fmt.Errorf("frames: PIFS %d != SIFS %d + slot %d", s.PIFS, s.SIFS, s.Slot)
	}
	if s.DIFS != s.SIFS+2*s.Slot {
		return fmt.Errorf("frames: DIFS %d != SIFS %d + 2·slot %d", s.DIFS, s.SIFS, s.Slot)
	}
	return nil
}

// MaxCTSDeferWindow computes the largest contention window w usable by
// the hypothetical "random CTS defer" scheme of §3: a receiver may defer
// its CTS by x ∈ [0..w] slots after SIFS, and every CTS must start
// before contending stations can seize the medium. With station access
// gated by DIFS the bound is w < (DIFS - SIFS)/slot; honouring the PIFS
// (point coordination) tightens it to w < (PIFS - SIFS)/slot. The paper
// concludes w = 1 for FHSS, and 0 with PIFS — far too small to
// desynchronise tens of colliding receivers.
func (s IFS) MaxCTSDeferWindow(honourPIFS bool) int {
	gate := s.DIFS
	if honourPIFS {
		gate = s.PIFS
	}
	w := (gate-s.SIFS)/s.Slot - 1
	if w < 0 {
		w = 0
	}
	return w
}

// CollisionProbability returns the probability that two or more of n
// receivers picking independent uniform defers in [0..w] collide on the
// same slot — the birthday bound that shows why the tiny windows above
// cannot rescue the scheme. n ≤ 0 or w < 0 return 0.
func CollisionProbability(n, w int) float64 {
	if n <= 1 || w < 0 {
		return 0
	}
	slots := w + 1
	if n > slots {
		return 1
	}
	pFree := 1.0
	for i := 0; i < n; i++ {
		pFree *= float64(slots-i) / float64(slots)
	}
	return 1 - pFree
}
