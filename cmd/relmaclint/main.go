// Command relmaclint runs the project's static-analysis suite
// (internal/lint) over the module. Since v2 the suite is built on a
// module-wide call graph and a lightweight dataflow layer: determinism
// and simsafe are reachability-based, and prngflow, hookpure, maporder
// and hotalloc guard the observer, map-order and allocation contracts of
// the slot loop. See the package documentation of internal/lint for the
// rules and the //relmac:allow directive syntax.
//
// Usage:
//
//	go run ./cmd/relmaclint [-json] [-sarif out.sarif] [-tilereport out.json] \
//	    [-checks determinism,prngflow] [-list] [patterns...]
//
// Patterns default to ./... and follow the go tool's convention
// (testdata, vendor and hidden directories are skipped). -sarif writes a
// SARIF 2.1.0 log for GitHub code scanning alongside the normal output;
// -tilereport writes the parallel-tile safety classification of every
// serial-path function and enforces the dispatch gate: any function the
// parallel resolver hands to pool workers that classifies
// shared-mutating fails the run. -list prints the registered checks and
// exits. The exit status is 1 when findings remain after suppression or
// the dispatch gate fails, 2 on a load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"relmac/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and suppressions as JSON (for CI annotation)")
	sarifOut := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to the given file (for code scanning)")
	tileOut := flag.String("tilereport", "", "also write the parallel-tile safety report to the given file")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default all: "+strings.Join(lint.CheckNames(), ",")+")")
	list := flag.Bool("list", false, "print the registered checks with their one-line docs and exit")
	dir := flag.String("C", ".", "directory to locate the module from")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "relmaclint: type error in %s: %v\n", p.Path, terr)
		}
	}

	cfg := lint.DefaultConfig()
	if *checks != "" {
		cfg.Checks = strings.Split(*checks, ",")
	}
	suite := lint.NewSuite(loader, cfg)
	res := suite.Run(pkgs)

	if *sarifOut != "" {
		if err := writeJSON(*sarifOut, lint.ToSARIF(res, root)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	dispatchUnsafe := false
	if *tileOut != "" {
		tile := suite.TileSafetyReport(pkgs)
		if err := writeJSON(*tileOut, tile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// The dispatch section is a gate, not just a report: code handed
		// to the parallel resolver's workers must stay pure/engine-local.
		if !tile.DispatchSafe {
			dispatchUnsafe = true
			for _, d := range tile.Dispatch {
				if d.Safe {
					continue
				}
				fmt.Fprintf(os.Stderr, "relmaclint: tile dispatch root %s is %s:\n", d.Root, d.Class)
				for _, r := range d.Reasons {
					fmt.Fprintf(os.Stderr, "  %s\n", r)
				}
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		for _, s := range res.Suppressions {
			fmt.Println(s)
		}
		fmt.Printf("relmaclint: %d package(s), %d finding(s), %d suppression(s)\n",
			len(pkgs), len(res.Findings), len(res.Suppressions))
	}
	if len(res.Findings) > 0 || dispatchUnsafe {
		os.Exit(1)
	}
}

// writeJSON marshals v, indented, to path.
func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
