// Command relmaclint runs the project's static-analysis suite
// (internal/lint) over the module: determinism, seedflow, floateq,
// frameswitch and obswiring — the mechanically enforced invariants behind
// the simulator's bit-reproducibility. See the package documentation of
// internal/lint for the rules and the //relmac:allow directive syntax.
//
// Usage:
//
//	go run ./cmd/relmaclint [-json] [-checks determinism,seedflow] [patterns...]
//
// Patterns default to ./... and follow the go tool's convention
// (testdata, vendor and hidden directories are skipped). The exit status
// is 1 when findings remain after suppression, 2 on a load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"relmac/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and suppressions as JSON (for CI annotation)")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default all: "+strings.Join(lint.CheckNames(), ",")+")")
	dir := flag.String("C", ".", "directory to locate the module from")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "relmaclint: type error in %s: %v\n", p.Path, terr)
		}
	}

	cfg := lint.DefaultConfig()
	if *checks != "" {
		cfg.Checks = strings.Split(*checks, ",")
	}
	res := lint.Run(pkgs, cfg)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		for _, s := range res.Suppressions {
			fmt.Println(s)
		}
		fmt.Printf("relmaclint: %d package(s), %d finding(s), %d suppression(s)\n",
			len(pkgs), len(res.Findings), len(res.Suppressions))
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}
