// Command covertool inspects the computational geometry behind LAMM:
// given station coordinates it reports the minimum cover set MCS(S), the
// greedy cover set, per-node cover angles and coverage gaps, and renders
// a small ASCII map.
//
// Points are read from stdin (one "x y" pair per line) or generated
// randomly with -random N.
//
// Usage:
//
//	echo "0.5 0.5\n0.6 0.5\n0.6 0.5" | covertool -radius 0.2
//	covertool -random 10 -seed 3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"relmac/internal/geom"
)

func main() {
	radius := flag.Float64("radius", 0.2, "transmission radius")
	random := flag.Int("random", 0, "generate N random points instead of reading stdin")
	seed := flag.Int64("seed", 1, "seed for -random")
	spread := flag.Float64("spread", 0.15, "spread of random points around (0.5,0.5)")
	flag.Parse()

	var pts []geom.Point
	if *random > 0 {
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *random; i++ {
			th := rng.Float64() * 2 * math.Pi
			d := rng.Float64() * *spread
			pts = append(pts, geom.Pt(0.5+d*math.Cos(th), 0.5+d*math.Sin(th)))
		}
	} else {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) < 2 {
				continue
			}
			x, errX := strconv.ParseFloat(fields[0], 64)
			y, errY := strconv.ParseFloat(fields[1], 64)
			if errX != nil || errY != nil {
				fmt.Fprintf(os.Stderr, "skipping malformed line: %s\n", sc.Text())
				continue
			}
			pts = append(pts, geom.Pt(x, y))
		}
	}
	if len(pts) == 0 {
		fmt.Fprintln(os.Stderr, "no points; pipe \"x y\" lines or use -random N")
		os.Exit(2)
	}

	fmt.Printf("%d stations, radius %g\n\n", len(pts), *radius)
	for i, p := range pts {
		fmt.Printf("  %2d: (%.3f, %.3f)\n", i, p.X, p.Y)
	}

	mcs := geom.MinCoverSet(pts, *radius)
	greedy := geom.GreedyCoverSet(pts, *radius)
	fmt.Printf("\nminimum cover set MCS(S): %v  (|S'| = %d of %d)\n", mcs, len(mcs), len(pts))
	fmt.Printf("greedy cover set:         %v  (size %d)\n", greedy, len(greedy))
	fmt.Printf("mandatory-node lower bound: %d\n\n", geom.CoverSetSizeBound(pts, *radius))

	sel := make([]geom.Point, len(mcs))
	inMCS := map[int]bool{}
	for k, i := range mcs {
		sel[k] = pts[i]
		inMCS[i] = true
	}
	for i, p := range pts {
		if inMCS[i] {
			continue
		}
		gaps := geom.CoverageGaps(p, sel, *radius)
		if len(gaps) == 0 {
			fmt.Printf("  node %2d: fully covered by MCS members\n", i)
		} else {
			fmt.Printf("  node %2d: NOT covered, gaps %v (cover-set invariant violated!)\n", i, gaps)
		}
	}

	fmt.Println("\nASCII map ('*' = MCS member, 'o' = covered node):")
	renderMap(pts, inMCS)
}

func renderMap(pts []geom.Point, inMCS map[int]bool) {
	const W, H = 61, 25
	grid := make([][]byte, H)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", W))
	}
	minX, maxX, minY, maxY := 1.0, 0.0, 1.0, 0.0
	for _, p := range pts {
		minX, maxX = min(minX, p.X), max(maxX, p.X)
		minY, maxY = min(minY, p.Y), max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1e-9
	}
	if maxY == minY {
		maxY = minY + 1e-9
	}
	for i, p := range pts {
		x := int((p.X - minX) / (maxX - minX) * float64(W-1))
		y := int((p.Y - minY) / (maxY - minY) * float64(H-1))
		c := byte('o')
		if inMCS[i] {
			c = '*'
		}
		grid[H-1-y][x] = c
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
