// Command doccheck validates the repository's markdown documentation:
// every inline link must resolve. Relative links must point at an
// existing file or directory, and fragment links — `#section` within a
// file or `OTHER.md#section` across files — must match a real heading
// under GitHub's anchor-slug rules. External http(s) and mailto links
// are not fetched (CI must not depend on the network); they are only
// counted.
//
// Usage:
//
//	go run ./cmd/doccheck [file.md ...]
//
// With no arguments it checks README.md, DESIGN.md, EXPERIMENTS.md and
// ROADMAP.md. Exit status is 1 when any link is broken, 2 on I/O
// errors. Code spans and fenced code blocks are ignored, so godoc-style
// snippets cannot false-positive.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var defaultFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"}

// linkRe matches an inline markdown link or image and captures the
// destination up to the first space or closing parenthesis (titles and
// size hints are irrelevant to resolution).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// headingRe matches an ATX heading and captures its text.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// codeSpanRe strips inline code spans so link-shaped text inside
// backticks is not parsed.
var codeSpanRe = regexp.MustCompile("`[^`]*`")

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		files = defaultFiles
	}
	broken, external := 0, 0
	anchorCache := map[string]map[string]bool{}
	for _, f := range files {
		b, e := checkFile(f, anchorCache)
		broken += b
		external += e
	}
	fmt.Fprintf(os.Stderr, "doccheck: %d file(s), %d external link(s) skipped, %d broken\n",
		len(files), external, broken)
	if broken > 0 {
		os.Exit(1)
	}
}

// checkFile validates every link in one markdown file and returns the
// broken and external link counts.
func checkFile(path string, anchorCache map[string]map[string]bool) (broken, external int) {
	lines, ok := readLines(path)
	if !ok {
		return 1, 0
	}
	dir := filepath.Dir(path)
	inFence := false
	for i, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		line = codeSpanRe.ReplaceAllString(line, "")
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			dest := m[1]
			switch {
			case strings.HasPrefix(dest, "http://"), strings.HasPrefix(dest, "https://"), strings.HasPrefix(dest, "mailto:"):
				external++
			case strings.HasPrefix(dest, "#"):
				if !hasAnchor(path, dest[1:], anchorCache) {
					fmt.Fprintf(os.Stderr, "%s:%d: broken anchor %q (no matching heading)\n", path, i+1, dest)
					broken++
				}
			default:
				file, frag, _ := strings.Cut(dest, "#")
				target := filepath.Join(dir, filepath.FromSlash(file))
				if _, err := os.Stat(target); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (%s does not exist)\n", path, i+1, dest, target)
					broken++
					continue
				}
				if frag != "" {
					if !strings.HasSuffix(strings.ToLower(file), ".md") {
						continue // fragments into non-markdown targets are not checkable
					}
					if !hasAnchor(target, frag, anchorCache) {
						fmt.Fprintf(os.Stderr, "%s:%d: broken anchor %q (no matching heading in %s)\n", path, i+1, dest, target)
						broken++
					}
				}
			}
		}
	}
	return broken, external
}

// hasAnchor reports whether the markdown file contains a heading whose
// GitHub slug equals the fragment, building and caching the slug set on
// first use.
func hasAnchor(path, frag string, cache map[string]map[string]bool) bool {
	slugs, ok := cache[path]
	if !ok {
		slugs = map[string]bool{}
		lines, readOK := readLines(path)
		if readOK {
			seen := map[string]int{}
			inFence := false
			for _, line := range lines {
				if strings.HasPrefix(strings.TrimSpace(line), "```") {
					inFence = !inFence
					continue
				}
				if inFence {
					continue
				}
				m := headingRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				s := slugify(m[1])
				if n := seen[s]; n > 0 {
					slugs[fmt.Sprintf("%s-%d", s, n)] = true
				} else {
					slugs[s] = true
				}
				seen[s]++
			}
		}
		cache[path] = slugs
	}
	return slugs[strings.ToLower(frag)]
}

// slugify applies GitHub's heading-anchor rules: lowercase, drop
// everything but letters, digits, spaces, hyphens and underscores, then
// turn spaces into hyphens. Inline code markers and link syntax are
// stripped first.
func slugify(heading string) string {
	heading = codeSpanRe.ReplaceAllStringFunc(heading, func(s string) string {
		return strings.Trim(s, "`")
	})
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		case r > 127: // non-ASCII letters survive slugging
			b.WriteRune(r)
		}
	}
	return b.String()
}

// readLines reads a file and splits it into lines, reporting failure to
// stderr.
func readLines(path string) ([]string, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		return nil, false
	}
	return strings.Split(string(data), "\n"), true
}
