// Command macsim runs one-off wireless LAN simulations of the reliable
// multicast MAC protocols (802.11 plain multicast, BSMA, BMW, BMMM,
// LAMM) and prints the paper's metrics: successful delivery rate,
// average contention phases and average message completion time.
//
// Usage:
//
//	macsim -protocol LAMM -nodes 100 -slots 10000 -runs 10
//	macsim -protocol all -rate 0.001 -capture sir
//	macsim -protocol BMMM -trace out.json       # Chrome trace for Perfetto
//	macsim -protocol BMMM -trace out.jsonl      # JSONL event log
//	macsim -protocol BMMM -flight spans.jsonl   # per-message lifecycle spans
//	macsim -protocol all -flightstats -stats    # stage-decomposed latency histograms
//	macsim -protocol all -audit report.json     # protocol conformance audit
//	macsim -protocol all -stats -pprof :6060
//	macsim -protocol all -ledger airtime.json  # slot-accurate airtime ledger + drift
//	macsim -protocol BMMM -listen :9090 -hold  # live /metrics + /snapshot endpoints
//	macsim -protocol BMMM -per 0.1 -stats       # 10% i.i.d. frame loss
//	macsim -protocol LAMM -ge 0.01:0.1:0.8      # bursty (Gilbert–Elliott) links
//	macsim -protocol all -crash 2000:200        # node crash/recover schedules
//	macsim -protocol LAMM -locnoise 0.05        # GPS error fed to LAMM
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"

	"relmac/internal/analysis"
	"relmac/internal/capture"
	"relmac/internal/chart"
	"relmac/internal/experiments"
	"relmac/internal/fault"
	"relmac/internal/mac"
	"relmac/internal/metrics"
	"relmac/internal/obs"
	"relmac/internal/prof"
	"relmac/internal/report"
	"relmac/internal/sim"
	"relmac/internal/topo"
	"relmac/internal/traffic"

	mrand "math/rand"
	_ "net/http/pprof"
)

func main() {
	proto := flag.String("protocol", "all", "protocol to simulate: 802.11|BSMA|BMW|BMMM|LAMM|KK-Leader|all|extended")
	nodes := flag.Int("nodes", 100, "number of stations in the unit square")
	radius := flag.Float64("radius", 0.2, "transmission radius")
	slots := flag.Int("slots", 10000, "simulated slots")
	timeout := flag.Int("timeout", 100, "upper-layer message timeout in slots")
	rate := flag.Float64("rate", 0.0005, "message generation rate per node per slot")
	threshold := flag.Float64("threshold", 0.9, "reliability threshold for success")
	capName := flag.String("capture", "zorzi-rao", "capture model: none|zorzi-rao|sir")
	runs := flag.Int("runs", 10, "independent runs to average")
	seed := flag.Int64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "parallel tile-resolver workers per run (0 = serial engine); results are identical for any worker count >= 1 but differ from serial")
	tileSize := flag.Float64("tilesize", 0, "tile side for -workers (0 = 4x radius; raised to the 2x radius minimum)")
	chartSlots := flag.Int("chart", 0, "render an ASCII channel-occupancy chart of the first N slots (single protocol, single run)")
	traceFile := flag.String("trace", "", "write an event trace of a single run to this file: *.jsonl for JSONL, anything else for Chrome trace-event JSON (open at ui.perfetto.dev)")
	stats := flag.Bool("stats", false, "print the stat registry (per-protocol counters and histograms) after the run table")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for the duration of the run")
	per := flag.Float64("per", 0, "fault: i.i.d. per-link packet error rate in [0,1]")
	geSpec := flag.String("ge", "", "fault: Gilbert–Elliott bursty channel, pGoodBad:pBadGood:perBad[:perGood]")
	crashSpec := flag.String("crash", "", "fault: node crash schedule, mttf:mttr in slots")
	locNoise := flag.Float64("locnoise", 0, "fault: stddev of the Gaussian location error LAMM sees (unit-square units)")
	ledgerFile := flag.String("ledger", "", "attach the airtime ledger and drift monitor, print the per-category breakdown, and write the JSON report to this file (\"-\" for stdout)")
	flightFile := flag.String("flight", "", "write per-message lifecycle span trees of a single run to this file: *.jsonl for span JSONL, anything else for Chrome trace-event JSON (open at ui.perfetto.dev)")
	flightStats := flag.Bool("flightstats", false, "attach a flight recorder per run and feed stage-decomposed latency histograms (queueing/contention/control/data airtime) into the stat registry; combine with -stats to print them")
	auditFile := flag.String("audit", "", "run the protocol conformance auditor on every run and write the findings report to this file (\"-\" for stdout); exits 1 if any violation is found")
	phases := flag.Bool("phases", false, "attach the engine phase profiler and print the phase breakdown after the run table; with -workers also prints worker utilization and the tile shape (byte-identical results either way)")
	listen := flag.String("listen", "", "serve live metrics on this address (e.g. :9090): /metrics is Prometheus text, /snapshot is JSON; implies the airtime ledger")
	hold := flag.Bool("hold", false, "with -listen: keep serving after the runs complete until interrupted")
	flag.Parse()

	faultCfg := fault.Config{PER: *per, LocNoise: *locNoise}
	var err error
	if faultCfg.GE, err = fault.ParseGE(*geSpec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if faultCfg.Crash, err = fault.ParseCrash(*crashSpec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err = faultCfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on %s\n", *pprofAddr)
	}

	capModel, ok := capture.ByName(*capName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown capture model %q\n", *capName)
		os.Exit(2)
	}
	var protos []experiments.Protocol
	switch {
	case strings.EqualFold(*proto, "all"):
		protos = experiments.AllProtocols
	case strings.EqualFold(*proto, "extended"):
		protos = experiments.ExtendedProtocols
	default:
		found := false
		for _, p := range experiments.ExtendedProtocols {
			if strings.EqualFold(string(p), *proto) ||
				(strings.EqualFold(*proto, "plain") && p == experiments.Plain80211) {
				protos = []experiments.Protocol{p}
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *proto)
			os.Exit(2)
		}
	}

	if *chartSlots > 0 {
		renderChart(protos[0], *nodes, *radius, *rate, *timeout, capModel, *seed, *chartSlots)
		return
	}

	if *traceFile != "" {
		// A trace file captures exactly one run of one protocol; mixing
		// events from several engines would interleave unrelated slots.
		if len(protos) > 1 {
			fmt.Fprintf(os.Stderr, "-trace: tracing only the first protocol (%s)\n", protos[0])
			protos = protos[:1]
		}
		if *runs != 1 {
			fmt.Fprintln(os.Stderr, "-trace: forcing -runs 1")
			*runs = 1
		}
	}
	if *flightFile != "" {
		// A span file captures exactly one run of one protocol, for the
		// same reason a trace file does.
		if len(protos) > 1 {
			fmt.Fprintf(os.Stderr, "-flight: recording only the first protocol (%s)\n", protos[0])
			protos = protos[:1]
		}
		if *runs != 1 {
			fmt.Fprintln(os.Stderr, "-flight: forcing -runs 1")
			*runs = 1
		}
	}
	ledgerOn := *ledgerFile != "" || *listen != ""
	var reg *obs.Registry
	if *stats || ledgerOn || *flightStats {
		reg = obs.NewRegistry()
	}

	// Drift accumulators merge across runs per protocol; the closure is
	// shared with the live /snapshot endpoint, so it takes the lock.
	var driftMu sync.Mutex
	driftAccums := make(map[string]*analysis.DriftAccum)
	driftSummaries := func() map[string]analysis.DriftSummary {
		driftMu.Lock()
		defer driftMu.Unlock()
		out := make(map[string]analysis.DriftSummary, len(driftAccums))
		for name, acc := range driftAccums {
			out[name] = acc.Summary()
		}
		return out
	}

	var msrv *obs.MetricsServer
	if *listen != "" {
		msrv = obs.NewMetricsServer(reg)
		msrv.Extra("drift", func() any { return driftSummaries() })
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		go func() {
			if err := http.Serve(ln, msrv.Handler()); err != nil {
				fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "metrics listening on http://%s\n", ln.Addr())
	}

	tb := report.NewTable(
		fmt.Sprintf("macsim: %d nodes, r=%g, %d slots, rate=%g, timeout=%d, capture=%s, %d run(s)",
			*nodes, *radius, *slots, *rate, *timeout, capModel.Name(), *runs),
		"protocol", "messages", "delivery rate", "avg contentions", "avg completion", "delivered frac")
	ledgers := make(map[string]*obs.Ledger)
	// Audit outcomes pool across runs per protocol; each run gets a fresh
	// auditor because message IDs restart with the engine.
	audits := make(map[string]*auditResult)
	// One phase timer per protocol, shared across its sequential runs so
	// the breakdown pools (prof.PhaseTimer is built for exactly this).
	phaseTimers := make(map[string]*prof.PhaseTimer)
	for _, p := range protos {
		var agg metrics.SummaryStats
		var st *obs.Stats
		if reg != nil {
			st = obs.NewStats(reg, string(p))
		}
		var pt *prof.PhaseTimer
		if *phases {
			pt = prof.New()
			phaseTimers[string(p)] = pt
			if msrv != nil {
				msrv.AddProfile(string(p), pt.Report)
			}
		}
		for r := 0; r < *runs; r++ {
			cfg := experiments.Defaults(p, *seed+int64(r))
			cfg.Nodes = *nodes
			cfg.Radius = *radius
			cfg.Slots = *slots
			cfg.Timeout = *timeout
			cfg.Rate = *rate
			cfg.Threshold = *threshold
			cfg.Capture = capModel
			cfg.Fault = faultCfg
			cfg.Workers = *workers
			cfg.TileSize = *tileSize
			if pt != nil {
				cfg.Profiler = pt
			}
			if st != nil {
				cfg.Observers = append(cfg.Observers, st)
			}
			var dm *obs.DriftMonitor
			if ledgerOn {
				// Fresh ledger per run; sharing the registry prefix makes
				// the counters accumulate across runs, and the snapshot
				// endpoint keeps serving the latest instance mid-loop.
				led := obs.NewLedger(reg, string(p))
				cfg.Observers = append(cfg.Observers, led)
				cfg.SlotObservers = append(cfg.SlotObservers, led)
				ledgers[string(p)] = led
				if msrv != nil {
					msrv.AddLedger(string(p), led)
				}
				dm = obs.NewDriftMonitor(analysis.RoundModelFor(string(p)))
				cfg.Observers = append(cfg.Observers, dm)
			}
			var tracer *obs.Tracer
			if *traceFile != "" {
				tracer = obs.NewTracer(0)
				tracer.Timing = cfg.MAC.Timing
				cfg.Observers = append(cfg.Observers, tracer)
				if msrv != nil {
					msrv.AddTracer(string(p), tracer)
				}
			}
			var fl *obs.Flight
			if *flightFile != "" || *flightStats {
				// The registry (and a per-protocol prefix) only when the
				// histograms were asked for; a span dump alone stays
				// registry-free.
				var freg *obs.Registry
				prefix := ""
				if *flightStats {
					freg, prefix = reg, string(p)
				}
				fl = obs.NewFlight(freg, prefix, 0)
				fl.Timing = cfg.MAC.Timing
				cfg.Observers = append(cfg.Observers, fl)
				cfg.Lifecycles = append(cfg.Lifecycles, fl)
				if msrv != nil {
					msrv.AddFlight(string(p), fl)
				}
			}
			var aud *obs.Auditor
			if *auditFile != "" {
				if ap, ok := obs.AuditProtocolFor(string(p)); ok {
					aud = obs.NewAuditor(ap, cfg.MAC.RetryLimit)
					cfg.Observers = append(cfg.Observers, aud)
					cfg.Lifecycles = append(cfg.Lifecycles, aud)
					if msrv != nil {
						msrv.AddAuditor(string(p), aud)
					}
				} else if r == 0 {
					fmt.Fprintf(os.Stderr, "audit: no conformance model for %s, skipping\n", p)
				}
			}
			res, err := experiments.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			agg.Add(res.Summary)
			if reg != nil && res.Fault != nil {
				res.Fault.FeedRegistry(reg, string(p)+".fault")
			}
			if pt != nil && reg != nil {
				tiles, seam, occ := pt.TileShape()
				obs.FeedTiling(reg, string(p), tiles, seam, occ)
			}
			if dm != nil {
				driftMu.Lock()
				if acc := driftAccums[string(p)]; acc != nil {
					acc.Merge(dm.Accum())
				} else {
					driftAccums[string(p)] = dm.Accum()
				}
				driftMu.Unlock()
			}
			if tracer != nil {
				if err := writeTrace(*traceFile, tracer); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "trace: %d events -> %s (%d dropped)\n",
					tracer.Len(), *traceFile, tracer.Dropped())
			}
			if fl != nil && *flightFile != "" {
				if err := writeFlight(*flightFile, fl); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fst := fl.Stats()
				fmt.Fprintf(os.Stderr, "flight: %d messages -> %s (%d complete, %d aborted, %d in flight)\n",
					fst.Tracked, *flightFile, fst.Completed, fst.Aborted, fst.InFlight)
			}
			if aud != nil {
				agg := audits[string(p)]
				if agg == nil {
					agg = &auditResult{Protocol: aud.Protocol().String(), Findings: []obs.Finding{}}
					audits[string(p)] = agg
				}
				ast := aud.Stats()
				agg.Audited += ast.Audited
				agg.Violations += ast.Violations
				agg.Findings = append(agg.Findings, aud.Findings()...)
			}
		}
		tb.AddRow(string(p), agg.Messages,
			fmt.Sprintf("%.3f ±%.3f", agg.SuccessRate.Mean(), agg.SuccessRate.CI95()),
			fmt.Sprintf("%.2f", agg.AvgContentions.Mean()),
			fmt.Sprintf("%.1f", agg.AvgCompletionTime.Mean()),
			fmt.Sprintf("%.3f", agg.MeanDeliveredFraction.Mean()))
	}
	tb.Render(os.Stdout)
	if *phases {
		fmt.Println()
		phaseTable(protos, phaseTimers).Render(os.Stdout)
		if *workers > 0 {
			fmt.Println()
			workerTable(protos, phaseTimers).Render(os.Stdout)
		}
	}
	if *stats {
		fmt.Println()
		if _, err := reg.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if ledgerOn {
		fmt.Println()
		airtimeTable(protos, ledgers, *runs).Render(os.Stdout)
	}
	if *ledgerFile != "" {
		if err := writeLedgerJSON(*ledgerFile, protos, ledgers, driftSummaries()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *auditFile != "" {
		if err := writeAuditJSON(*auditFile, protos, audits); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var violations int64
		for _, p := range protos {
			agg := audits[string(p)]
			if agg == nil {
				continue
			}
			fmt.Fprintf(os.Stderr, "audit %s: %d messages, %d violations\n",
				p, agg.Audited, agg.Violations)
			violations += agg.Violations
		}
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "audit: %d conformance violations\n", violations)
			os.Exit(1)
		}
	}
	if *listen != "" && *hold {
		fmt.Fprintln(os.Stderr, "metrics: holding (-hold); Ctrl-C to exit")
		select {}
	}
}

// phaseTable renders the phase breakdown: one row per protocol, one
// column per engine phase, each cell the fraction of that protocol's
// pooled wall time (all runs share one timer). The trailing columns
// give the measured serial fraction and its Amdahl ceiling.
func phaseTable(protos []experiments.Protocol, timers map[string]*prof.PhaseTimer) *report.Table {
	cols := []string{"protocol", "wall ms"}
	for i := 0; i < sim.NumPhases; i++ {
		cols = append(cols, sim.Phase(i).String())
	}
	cols = append(cols, "serial frac", "amdahl limit")
	tb := report.NewTable("engine phases: fraction of wall time per phase (all runs pooled)", cols...)
	for _, p := range protos {
		pt := timers[string(p)]
		if pt == nil {
			continue
		}
		r := pt.Report()
		row := []any{string(p), float64(r.WallNs) / 1e6}
		for _, s := range r.Phases {
			row = append(row, s.Frac)
		}
		row = append(row, r.SerialFraction, r.AmdahlLimit)
		tb.AddRow(row...)
	}
	tb.Note = "conservation holds by construction: phase fractions sum to 1"
	return tb
}

// workerTable renders the pool telemetry of a -workers run: per-worker
// task counts and busy/parked utilization, plus the tile shape behind
// the load balance (count, seam size, occupancy imbalance).
func workerTable(protos []experiments.Protocol, timers map[string]*prof.PhaseTimer) *report.Table {
	tb := report.NewTable("parallel runtime: per-worker utilization and tile shape (all runs pooled)",
		"protocol", "worker", "tasks", "busy ms", "parked ms", "utilization")
	for _, p := range protos {
		pt := timers[string(p)]
		if pt == nil {
			continue
		}
		r := pt.Report()
		for _, w := range r.Workers {
			tb.AddRow(string(p), w.Worker, w.Tasks,
				float64(w.BusyNs)/1e6, float64(w.ParkedNs)/1e6, w.Utilization)
		}
		if t := r.Tiles; t != nil {
			tb.AddRow(string(p), "tiles", t.Tiles,
				fmt.Sprintf("seam %d", t.SeamStations),
				fmt.Sprintf("occ %d-%d", t.MinOccupancy, t.MaxOccupancy),
				fmt.Sprintf("imbalance %.2f", t.Imbalance))
		}
	}
	tb.Note = "parked time is idle waiting between pool dispatches; utilization = busy / (busy + parked)"
	return tb
}

// auditResult pools one protocol's audit outcome across runs.
type auditResult struct {
	Protocol   string        `json:"protocol"`
	Audited    int64         `json:"audited"`
	Violations int64         `json:"violations"`
	Findings   []obs.Finding `json:"findings"`
}

// writeAuditJSON emits the conformance report: one entry per audited
// protocol with pooled message counts, violation totals and findings.
func writeAuditJSON(path string, protos []experiments.Protocol, audits map[string]*auditResult) error {
	payload := make(map[string]*auditResult, len(audits))
	for _, p := range protos {
		if agg := audits[string(p)]; agg != nil {
			payload[string(p)] = agg
		}
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "audit: wrote %s\n", path)
	return nil
}

// writeFlight exports the flight recorder's span trees: span JSONL when
// the file name ends in .jsonl, Chrome trace-event JSON otherwise.
func writeFlight(path string, fl *obs.Flight) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = fl.WriteSpansJSONL(f)
	} else {
		err = fl.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// airtimeTable renders the ledger breakdown: one row per protocol, one
// column per category, each cell the fraction of the total simulated
// airtime (all runs pooled — the registry counters accumulate across
// runs sharing a protocol prefix).
func airtimeTable(protos []experiments.Protocol, ledgers map[string]*obs.Ledger, runs int) *report.Table {
	cols := append([]string{"protocol", "slots"}, obs.CategoryNames()...)
	tb := report.NewTable(
		fmt.Sprintf("airtime ledger: fraction of slots per category (%d run(s) pooled)", runs), cols...)
	for _, p := range protos {
		led := ledgers[string(p)]
		if led == nil {
			continue
		}
		snap := led.Snapshot()
		row := []any{string(p), snap.TotalSlots}
		for _, name := range obs.CategoryNames() {
			frac := 0.0
			if snap.TotalSlots > 0 {
				frac = float64(snap.Categories[name]) / float64(snap.TotalSlots)
			}
			row = append(row, frac)
		}
		tb.AddRow(row...)
	}
	tb.Note = "slot conservation holds by construction: category counts sum to slots"
	return tb
}

// writeLedgerJSON emits the machine-readable airtime report: the
// per-protocol ledger snapshots plus the merged drift summaries.
func writeLedgerJSON(path string, protos []experiments.Protocol,
	ledgers map[string]*obs.Ledger, drift map[string]analysis.DriftSummary) error {
	snaps := make(map[string]obs.LedgerSnapshot, len(ledgers))
	for _, p := range protos {
		if led := ledgers[string(p)]; led != nil {
			snaps[string(p)] = led.Snapshot()
		}
	}
	payload := struct {
		Ledgers map[string]obs.LedgerSnapshot    `json:"ledgers"`
		Drift   map[string]analysis.DriftSummary `json:"drift"`
	}{snaps, drift}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ledger: wrote %s\n", path)
	return nil
}

// writeTrace exports the tracer's buffer: JSONL when the file name ends
// in .jsonl, Chrome trace-event JSON otherwise.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// renderChart runs one simulation with the channel-occupancy tracer and
// prints the diagram of the first chartSlots slots.
func renderChart(p experiments.Protocol, nodes int, radius, rate float64,
	timeout int, capModel capture.Model, seed int64, chartSlots int) {
	factory, err := experiments.Factory(p, mac.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rng := mrand.New(mrand.NewSource(seed))
	tp := topo.Uniform(nodes, radius, rng)
	ch := chart.New(tp.N(), 0, sim.Slot(chartSlots-1))
	ch.ShowLosses = true
	eng := sim.New(sim.Config{Topo: tp, Capture: capModel, Seed: seed, Tracer: ch})
	eng.AttachMACs(factory)
	gen := traffic.NewGenerator(tp)
	gen.Rate = rate
	gen.Timeout = timeout
	eng.Run(chartSlots, gen)
	fmt.Printf("%s on %d stations, first %d slots:\n\n", p, tp.N(), chartSlots)
	ch.Render(os.Stdout)
	fmt.Println("\n" + chart.Legend())
}
