// Command relbench is the benchmark-regression harness: it measures
// engine slot throughput on the optimized and reference paths, per-slot
// allocation pressure, per-protocol sweep wall time, and the engine
// phase decomposition (serial fraction + Amdahl projection), writes the
// results to BENCH.json, and compares them against the committed
// BENCH_BASELINE.json.
//
// Usage:
//
//	go run ./cmd/relbench [-quick|-large] [-json] [-out BENCH.json]
//	                      [-baseline BENCH_BASELINE.json] [-tolerance 0.25]
//	                      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The baseline gate rests only on machine-independent quantities — the
// reference/optimized speedup ratio and exact allocations per slot —
// so the committed baseline is valid on any machine; absolute
// nanoseconds are recorded as advisory context, and a host-metadata
// mismatch against the baseline surfaces as an advisory note. The
// parallel scaling section additionally enforces an absolute floor on
// the 1→8-worker speedup, but only on machines with at least 8 CPU
// cores (below that the scaling number reflects the hardware, not the
// resolver, and is reported as advisory). -large switches to the
// 100 000-station profile, sized for the tile resolver's scaling
// regime. -cpuprofile/-memprofile write pprof profiles of the
// measurement suite itself, for digging into *why* a phase got slower
// once the phase table says *where*. Exit status is 1 when a regression
// exceeds the tolerance band, 2 on a measurement failure.
//
// To refresh the baseline after an intentional performance change, run
// both profiles and merge the reports:
//
//	go run ./cmd/relbench -quick -out /tmp/q.json
//	go run ./cmd/relbench -out /tmp/f.json
//
// then update BENCH_BASELINE.json's "quick"/"full" entries from them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"relmac/internal/relbench"
)

func main() {
	// Exit via a return code so the profile-writing defers inside run
	// always fire; os.Exit would skip them.
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "use the CI smoke profile instead of the full profile")
	large := flag.Bool("large", false, "use the 100k-station scaling profile (parallel tile-resolver stress)")
	jsonOut := flag.Bool("json", false, "print the report as JSON to stdout")
	out := flag.String("out", "BENCH.json", "path to write the report (empty disables)")
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "baseline to compare against (missing file skips the gate)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional slack before a regression is flagged")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurement suite to this file (inspect with go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file (inspect with go tool pprof)")
	flag.Parse()

	profile := relbench.Full
	if *quick {
		profile = relbench.Quick
	}
	if *large {
		if *quick {
			fmt.Fprintln(os.Stderr, "relbench: -quick and -large are mutually exclusive")
			return 2
		}
		profile = relbench.Large
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "relbench:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "relbench:", err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "relbench: wrote CPU profile to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "relbench:", err)
				return
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "relbench:", err)
			} else {
				fmt.Fprintf(os.Stderr, "relbench: wrote heap profile to %s\n", *memprofile)
			}
			f.Close()
		}()
	}

	report, err := relbench.Measure(profile, func(line string) {
		fmt.Fprintln(os.Stderr, "relbench:", line)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "relbench:", err)
		return 2
	}

	if *out != "" {
		if err := relbench.WriteReport(*out, report); err != nil {
			fmt.Fprintln(os.Stderr, "relbench:", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "relbench:", err)
			return 2
		}
	} else {
		fmt.Printf("profile %s: optimized %.0f ns/slot (%.2f allocs/slot), reference %.0f ns/slot, speedup %.2fx\n",
			report.Profile, report.Engine.Optimized.NsPerSlot,
			report.Engine.Optimized.AllocsPerSlot,
			report.Engine.Reference.NsPerSlot, report.Engine.Speedup)
		if s := report.Sparse; s != nil {
			fmt.Printf("  sparse: optimized %.0f ns/slot (%.2f allocs/slot), reference %.0f ns/slot, speedup %.2fx\n",
				s.Optimized.NsPerSlot, s.Optimized.AllocsPerSlot,
				s.Reference.NsPerSlot, s.Speedup)
		}
		if pa := report.Parallel; pa != nil {
			fmt.Printf("  parallel: %d nodes, %d tiles, %d cores; serial %.0f ns/slot\n",
				pa.Nodes, pa.Tiles, pa.Cores, pa.Serial.NsPerSlot)
			for _, w := range pa.Workers {
				fmt.Printf("    %d worker(s): %.0f ns/slot (%.0f slots/sec)\n",
					w.Workers, w.NsPerSlot, w.SlotsPerSec)
			}
			fmt.Printf("    1->8 speedup %.2fx\n", pa.SpeedupAt8)
		}
		if ph := report.Phases; ph != nil && ph.Serial != nil {
			fmt.Printf("  phases (serial run): serial fraction %.3f, Amdahl limit %.1fx, max useful workers %d\n",
				ph.Serial.SerialFraction, ph.Serial.AmdahlLimit, ph.Serial.MaxUsefulWorkers)
			for _, s := range ph.Serial.Phases {
				if s.Ns > 0 {
					fmt.Printf("    %-18s %6.1f%%\n", s.Phase, s.Frac*100)
				}
			}
		}
		for _, p := range report.Protocols {
			fmt.Printf("  %-8s %6d slots in %8.1f ms (%.0f slots/sec)\n",
				p.Protocol, p.Slots, p.WallMs, p.SlotsPerSec)
		}
	}

	base, err := relbench.LoadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relbench:", err)
		return 2
	}
	regressions, advisories := relbench.Compare(report, base, *tolerance)
	for _, a := range advisories {
		fmt.Fprintln(os.Stderr, "relbench: note:", a)
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "relbench: REGRESSION:", r)
	}
	if len(regressions) > 0 {
		return 1
	}
	return 0
}
