// Command experiments regenerates every table and figure of the paper's
// evaluation: Table 1, Figure 2 (frame timelines), Figure 5 (analysis)
// and Figures 6–10 (simulation sweeps). Results print as ASCII tables
// and are additionally written as CSV files under -out.
//
// Usage:
//
//	experiments -exp all -runs 100            # full fidelity (slow)
//	experiments -exp fig6a -runs 10           # one figure, reduced runs
//	experiments -exp table1,fig5              # analysis only (instant)
//	experiments -exp density -pprof :6060     # profile a sweep
//	experiments -exp fault -runs 20           # delivery/contentions vs PER
//	experiments -exp density -per 0.05        # any sweep under 5% frame loss
//
// Sweeps print per-point progress/ETA lines on stderr; silence them
// with -progress=false.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"relmac/internal/experiments"
	"relmac/internal/fault"
	"relmac/internal/obs"
	"relmac/internal/prof"
	"relmac/internal/report"
	"relmac/internal/sim"

	_ "net/http/pprof"
)

func main() {
	exp := flag.String("exp", "all",
		"comma-separated experiments: table1,fig2,fig5,fig6a,fig6b,fig7,fig8,fig9a,fig9b,fig10a,fig10b,density,rate,all, plus extensions: mobility,gpserr,overhead,fault,faultburst,drift")
	runs := flag.Int("runs", 10, "simulation runs per plotted point (paper: 100)")
	slots := flag.Int("slots", 10000, "simulated slots per run")
	out := flag.String("out", "results", "directory for CSV output (empty disables)")
	withPlain := flag.Bool("plain80211", false, "include the stock unreliable 802.11 multicast")
	progress := flag.Bool("progress", true, "print per-sweep-point progress/ETA lines on stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for the duration of the sweeps")
	per := flag.Float64("per", 0, "fault: i.i.d. per-link packet error rate applied to every sweep run")
	geSpec := flag.String("ge", "", "fault: Gilbert–Elliott bursty channel, pGoodBad:pBadGood:perBad[:perGood]")
	crashSpec := flag.String("crash", "", "fault: node crash schedule, mttf:mttr in slots")
	locNoise := flag.Float64("locnoise", 0, "fault: stddev of the Gaussian location error LAMM sees")
	listen := flag.String("listen", "", "serve live sweep metrics on this address (e.g. :9090): /metrics is Prometheus text (airtime ledger + sweep progress/ETA gauges), /snapshot is JSON")
	workers := flag.Int("workers", 0, "parallel tile-resolver workers per run (0 = serial engine); trajectories differ from serial but are worker-count independent")
	phases := flag.Bool("phases", false, "attach the engine phase profiler to every sweep run and print the pooled per-protocol phase breakdown after the sweeps (byte-identical results either way)")
	flightDir := flag.String("flight-dir", "", fmt.Sprintf("drift experiment: dump per-message lifecycle span traces (JSONL, one file per run) into this directory for any protocol whose weighted drift exceeds experiments.DriftTolerance (%.2f)", experiments.DriftTolerance))
	flag.Parse()

	faultCfg := fault.Config{PER: *per, LocNoise: *locNoise}
	var ferr error
	if faultCfg.GE, ferr = fault.ParseGE(*geSpec); ferr != nil {
		fmt.Fprintln(os.Stderr, ferr)
		os.Exit(2)
	}
	if faultCfg.Crash, ferr = fault.ParseCrash(*crashSpec); ferr != nil {
		fmt.Fprintln(os.Stderr, ferr)
		os.Exit(2)
	}
	if ferr = faultCfg.Validate(); ferr != nil {
		fmt.Fprintln(os.Stderr, ferr)
		os.Exit(2)
	}

	if *progress {
		experiments.Progress.W = os.Stderr
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on %s\n", *pprofAddr)
	}
	if *listen != "" {
		// Live export: every sweep run gets a fresh airtime ledger (the
		// registry counters pool across runs per protocol prefix), and the
		// sweep worker pool reports progress into a SweepStatus the
		// endpoint reads as gauges. Both hooks are snapshotted at Sweep
		// entry, so they are installed once, up front.
		reg := obs.NewRegistry()
		msrv := obs.NewMetricsServer(reg)
		st := &experiments.SweepStatus{}
		experiments.Progress.Status = st
		msrv.Gauge("sweep.progress", st.Fraction)
		msrv.Gauge("sweep.eta_seconds", st.ETASeconds)
		msrv.Gauge("sweep.elapsed_seconds", st.ElapsedSeconds)
		msrv.Extra("sweep", func() any { return st.Snapshot() })
		experiments.Instrument = func(cfg *experiments.RunConfig) {
			led := obs.NewLedger(reg, string(cfg.Protocol))
			cfg.Observers = append(cfg.Observers, led)
			cfg.SlotObservers = append(cfg.SlotObservers, led)
			msrv.AddLedger(string(cfg.Protocol), led)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		go func() {
			if err := http.Serve(ln, msrv.Handler()); err != nil {
				fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "metrics listening on http://%s\n", ln.Addr())
	}

	// One fresh PhaseTimer per sweep run (engines must not share a
	// timer); prof.Aggregate pools them per protocol at the end. The
	// Instrument hook chains after the -listen one and runs on sweep
	// worker goroutines, hence the mutex.
	var phaseMu sync.Mutex
	phaseTimers := make(map[string][]*prof.PhaseTimer)
	if *phases {
		prev := experiments.Instrument
		experiments.Instrument = func(cfg *experiments.RunConfig) {
			if prev != nil {
				prev(cfg)
			}
			pt := prof.New()
			cfg.Profiler = pt
			phaseMu.Lock()
			phaseTimers[string(cfg.Protocol)] = append(phaseTimers[string(cfg.Protocol)], pt)
			phaseMu.Unlock()
		}
	}

	o := experiments.Options{Runs: *runs, Slots: *slots, Fault: faultCfg, FlightDir: *flightDir, Workers: *workers}
	if *withPlain {
		o.Protocols = experiments.AllProtocols
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	anyDensity := all || want["density"] || want["fig6a"] || want["fig9a"] || want["fig10a"]
	anyRate := all || want["rate"] || want["fig6b"] || want["fig9b"] || want["fig10b"]

	emit := func(tb *report.Table, csvName string) {
		tb.Render(os.Stdout)
		if *out != "" {
			path := filepath.Join(*out, csvName)
			if err := tb.WriteCSV(path); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("(csv: %s)\n\n", path)
		}
	}
	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if all || want["table1"] {
		emit(experiments.TableOne(), "table1.csv")
	}
	if all || want["fig2"] {
		text, err := experiments.Fig2()
		fail(err)
		fmt.Println(text)
		if *out != "" {
			fail(os.MkdirAll(*out, 0o755))
			fail(os.WriteFile(filepath.Join(*out, "fig2.txt"), []byte(text), 0o644))
		}
	}
	if all || want["fig5"] {
		emit(experiments.Fig5(25), "fig5.csv")
	}
	if anyDensity {
		start := time.Now()
		f6a, f9a, f10a, err := experiments.Density(o)
		fail(err)
		fmt.Printf("(density sweep: %d runs/point, %v)\n", *runs, time.Since(start).Round(time.Second))
		if all || want["density"] || want["fig6a"] {
			emit(f6a, "fig6a.csv")
		}
		if all || want["density"] || want["fig9a"] {
			emit(f9a, "fig9a.csv")
		}
		if all || want["density"] || want["fig10a"] {
			emit(f10a, "fig10a.csv")
		}
	}
	if anyRate {
		start := time.Now()
		f6b, f9b, f10b, err := experiments.Rate(o)
		fail(err)
		fmt.Printf("(rate sweep: %d runs/point, %v)\n", *runs, time.Since(start).Round(time.Second))
		if all || want["rate"] || want["fig6b"] {
			emit(f6b, "fig6b.csv")
		}
		if all || want["rate"] || want["fig9b"] {
			emit(f9b, "fig9b.csv")
		}
		if all || want["rate"] || want["fig10b"] {
			emit(f10b, "fig10b.csv")
		}
	}
	if all || want["fig7"] {
		start := time.Now()
		tb, err := experiments.Fig7(o)
		fail(err)
		fmt.Printf("(timeout sweep: %v)\n", time.Since(start).Round(time.Second))
		emit(tb, "fig7.csv")
	}
	if want["mobility"] {
		start := time.Now()
		tb, err := experiments.Mobility(o)
		fail(err)
		fmt.Printf("(mobility sweep: %v)\n", time.Since(start).Round(time.Second))
		emit(tb, "mobility.csv")
	}
	if want["overhead"] {
		start := time.Now()
		tb, err := experiments.Overhead(o)
		fail(err)
		fmt.Printf("(overhead sweep: %v)\n", time.Since(start).Round(time.Second))
		emit(tb, "overhead.csv")
	}
	if want["fault"] {
		start := time.Now()
		// FaultPER defaults to its own protocol set (BMW/BMMM/LAMM) and
		// owns the PER axis; other impairments from the flags ride along.
		deliv, cont, err := experiments.FaultPER(o)
		fail(err)
		fmt.Printf("(fault PER sweep: %v)\n", time.Since(start).Round(time.Second))
		emit(deliv, "fault_delivery.csv")
		emit(cont, "fault_contentions.csv")
	}
	if want["faultburst"] {
		start := time.Now()
		tb, err := experiments.FaultBurst(o)
		fail(err)
		fmt.Printf("(fault burst sweep: %v)\n", time.Since(start).Round(time.Second))
		emit(tb, "fault_burst.csv")
	}
	if want["drift"] {
		start := time.Now()
		tb, _, err := experiments.Drift(o)
		fail(err)
		fmt.Printf("(drift run: %v)\n", time.Since(start).Round(time.Second))
		emit(tb, "drift.csv")
	}
	if want["gpserr"] {
		start := time.Now()
		tb, err := experiments.LocationError(o)
		fail(err)
		fmt.Printf("(gps-error sweep: %v)\n", time.Since(start).Round(time.Second))
		emit(tb, "gpserr.csv")
	}
	if all || want["fig8"] {
		start := time.Now()
		tb, err := experiments.Fig8(o)
		fail(err)
		fmt.Printf("(threshold sweep: %v)\n", time.Since(start).Round(time.Second))
		emit(tb, "fig8.csv")
	}
	if *phases {
		phaseMu.Lock()
		tb := phaseTable(phaseTimers)
		phaseMu.Unlock()
		fmt.Println()
		tb.Render(os.Stdout)
	}
}

// phaseTable pools every sweep run's phase timer per protocol and
// renders the wall-time decomposition with the measured serial fraction
// and its Amdahl ceiling.
func phaseTable(timers map[string][]*prof.PhaseTimer) *report.Table {
	cols := []string{"protocol", "runs", "wall ms"}
	for i := 0; i < sim.NumPhases; i++ {
		cols = append(cols, sim.Phase(i).String())
	}
	cols = append(cols, "serial frac", "amdahl limit")
	tb := report.NewTable("engine phases: fraction of wall time per phase (all sweep runs pooled)", cols...)
	names := make([]string, 0, len(timers))
	for name := range timers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := prof.Aggregate(timers[name])
		row := []any{name, r.Runs, float64(r.WallNs) / 1e6}
		for _, s := range r.Phases {
			row = append(row, s.Frac)
		}
		row = append(row, r.SerialFraction, r.AmdahlLimit)
		tb.AddRow(row...)
	}
	tb.Note = "conservation holds by construction: phase fractions sum to 1"
	return tb
}
