// Command analysis prints the paper's closed-form results: Table 1
// (expected contention phases before the data frame is sent) and the
// Figure 5 series (expected total contention phases versus receiver
// count), including a Monte-Carlo validation column for the fₙ
// recurrence.
//
// Usage:
//
//	analysis [-maxn N] [-p P] [-q Q] [-mc trials] [-seed S]
//	analysis -drift 6              # observed-vs-closed-form drift table
//	analysis -drift 6 -driftslots 5000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"relmac/internal/analysis"
	"relmac/internal/capture"
	"relmac/internal/experiments"
	"relmac/internal/report"
)

func main() {
	maxN := flag.Int("maxn", 25, "largest receiver count for the Figure 5 series")
	p := flag.Float64("p", 0.9, "per-round per-receiver success probability (Figure 5)")
	q := flag.Float64("q", 0.05, "per-receiver CTS-miss probability (Table 1)")
	mc := flag.Int("mc", 50000, "Monte-Carlo trials validating f_n (0 disables)")
	seed := flag.Int64("seed", 1, "RNG seed for the Monte-Carlo column")
	drift := flag.Int("drift", 0, fmt.Sprintf("simulation runs per protocol for the analytic-drift table on the Figure 6 config (0 disables; gated in tests at |rel_err| <= experiments.DriftTolerance = %.2f)", experiments.DriftTolerance))
	driftSlots := flag.Int("driftslots", 5000, "simulated slots per drift run")
	flag.Parse()

	experiments.TableOne().Render(os.Stdout)

	// Extra Table 1 rows at the requested q, for exploration beyond the
	// paper's two parameter sets.
	extra := report.NewTable(fmt.Sprintf("Expected contention phases before data (q=%g)", *q),
		"n", "|S'|", "BMMM", "LAMM", "BMW", "BSMA")
	for _, n := range []int{2, 5, 10, 15, 20} {
		cover := (n + 1) / 2
		r := analysis.ExpectedCPBeforeData(*q, n, cover, capture.ZorziRao{})
		extra.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", cover), r.BMMM, r.LAMM, r.BMW, r.BSMA)
	}
	extra.Render(os.Stdout)

	fig5Table(*maxN, *p, *mc, *seed).Render(os.Stdout)

	if *drift > 0 {
		tb, _, err := experiments.Drift(experiments.Options{Runs: *drift, Slots: *driftSlots})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tb.Render(os.Stdout)
	}
}

// fig5Table builds the Figure 5 series. The Monte-Carlo validation
// column draws from an RNG seeded by the explicit seed parameter, so the
// rendered table is a pure function of its arguments.
func fig5Table(maxN int, p float64, mc int, seed int64) *report.Table {
	fig5 := report.NewTable(
		fmt.Sprintf("Figure 5: expected number of contention phases (p=%g)", p),
		"n", "BMMM/LAMM (f_n)", "BMW (n/p)", "f_n Monte-Carlo")
	rng := rand.New(rand.NewSource(seed))
	for n := 1; n <= maxN; n++ {
		fn := analysis.ExpectedRounds(n, p)
		bmw := analysis.BMWExpectedRounds(n, p)
		mcv := "-"
		if mc > 0 {
			mcv = fmt.Sprintf("%.3f", analysis.SimulateRounds(n, p, mc, rng))
		}
		fig5.AddRow(fmt.Sprintf("%d", n), fn, bmw, mcv)
	}
	return fig5
}
