package main

import (
	"strings"
	"testing"
)

// TestFig5TableSeedRegression pins the seedflow conversion of the
// Monte-Carlo column: the rendered table is a pure function of its
// arguments — identical for identical seeds, and actually seed-dependent
// (the RNG is really threaded through, not re-seeded internally).
func TestFig5TableSeedRegression(t *testing.T) {
	render := func(seed int64) string {
		var b strings.Builder
		if err := fig5Table(8, 0.9, 2000, seed).Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render(1) != render(1) {
		t.Error("same seed rendered different tables")
	}
	if render(1) == render(2) {
		t.Error("different seeds rendered identical Monte-Carlo columns; seed is not threaded through")
	}
}

// TestFig5TableNoMonteCarlo keeps the mc=0 path dash-only and
// seed-independent.
func TestFig5TableNoMonteCarlo(t *testing.T) {
	var a, b strings.Builder
	if err := fig5Table(5, 0.9, 0, 1).Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := fig5Table(5, 0.9, 0, 2).Render(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("mc=0 tables differ across seeds")
	}
	if !strings.Contains(a.String(), "-") {
		t.Error("mc=0 table missing the dash placeholder column")
	}
}
