module relmac

go 1.22
